(* Benchmark harness.

   Two halves:
   - the reproduction suite: one table/figure per paper claim plus the
     extensions (E1..E12, F1..F5), the exhaustive model-checking runs
     (MC) and the fuzzing-campaign summaries (FZ), regenerated
     deterministically — run with no arguments, or pass ids to select;
   - Bechamel microbenchmarks ("perf") measuring the substrate and the
     algorithm itself, one Test.make per benchmark. *)

open Bechamel
open Toolkit

let scenario_bench name scenario =
  Test.make ~name (Staged.stage (fun () -> ignore (Harness.Run.run scenario)))

let quiet_oracle : Harness.Scenario.detector_kind =
  Harness.Scenario.Oracle { detection_delay = 50; fp_per_edge = 0; fp_window = 0; fp_max_len = 1 }

let short (topology : Cgraph.Topology.spec) algo detector : Harness.Scenario.t =
  {
    Harness.Scenario.default with
    name = "bench";
    topology;
    algo;
    detector;
    workload = Harness.Scenario.default_workload;
    crashes = Harness.Scenario.No_crashes;
    horizon = 4_000;
    check_every = None;
    seed = 9L;
  }

let perf_tests () =
  [
    Test.make ~name:"engine:100k-events"
      (Staged.stage (fun () ->
           let engine = Sim.Engine.create () in
           let count = ref 0 in
           let rec tick () =
             incr count;
             if !count < 100_000 then ignore (Sim.Engine.schedule_after engine ~delay:1 tick)
           in
           ignore (Sim.Engine.schedule engine ~at:0 tick);
           Sim.Engine.run_all engine));
    Test.make ~name:"pqueue:10k-mixed"
      (Staged.stage (fun () ->
           let q = Sim.Pqueue.create () in
           for i = 0 to 9_999 do
             Sim.Pqueue.add q ~prio:((i * 7919) mod 1000) i
           done;
           while not (Sim.Pqueue.is_empty q) do
             ignore (Sim.Pqueue.pop q)
           done));
    Test.make ~name:"rng:100k-draws"
      (Staged.stage (fun () ->
           let rng = Sim.Rng.create 7L in
           for _ = 1 to 100_000 do
             ignore (Sim.Rng.int rng 1000)
           done));
    scenario_bench "dining:ring-32"
      (short (Cgraph.Topology.Ring 32) Harness.Scenario.Song_pike quiet_oracle);
    scenario_bench "dining:clique-8-contended"
      {
        (short (Cgraph.Topology.Clique 8) Harness.Scenario.Song_pike quiet_oracle) with
        workload = Harness.Scenario.contended_workload;
      };
    scenario_bench "dining:ring-32-heartbeat"
      (short (Cgraph.Topology.Ring 32) Harness.Scenario.Song_pike
         (Harness.Scenario.Heartbeat { period = 20; initial_timeout = 30; bump = 25 }));
    scenario_bench "baseline:chandy-misra-ring-32"
      (short (Cgraph.Topology.Ring 32) Harness.Scenario.Chandy_misra Harness.Scenario.Never);
    Test.make ~name:"mcheck:pair-2sessions"
      (Staged.stage (fun () ->
           let graph = Cgraph.Graph.of_edges ~n:2 [ (0, 1) ] in
           ignore
             (Mcheck.Explore.bfs
                {
                  Mcheck.Model.graph;
                  colors = [| 0; 1 |];
                  sessions = 2;
                  crash_budget = 0;
                  fp_budget = 0;
                })));
  ]

let run_perf () =
  print_endline "### PERF — Bechamel microbenchmarks (OLS on the monotonic clock)\n";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 1.0) ~stabilize:false () in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"perf" ~fmt:"%s %s" (perf_tests ()))
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Stats.Table.create ~title:"PERF: wall-clock per run"
      ~columns:
        [ ("benchmark", Stats.Table.Left); ("time/run", Stats.Table.Right); ("r^2", Stats.Table.Right) ]
  in
  let rows = ref [] in
  Hashtbl.iter (fun name est -> rows := (name, est) :: !rows) results;
  List.iter
    (fun (name, est) ->
      let ns = match Analyze.OLS.estimates est with Some [ e ] -> e | _ -> Float.nan in
      let pretty =
        if Float.is_nan ns then "-"
        else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      let r2 =
        match Analyze.OLS.r_square est with Some r -> Printf.sprintf "%.3f" r | None -> "-"
      in
      Stats.Table.add_row table [ name; pretty; r2 ])
    (List.sort compare !rows);
  Stats.Table.print table

let run_mc () =
  print_endline
    "### MC — exhaustive model checking of Algorithm 1 (Lemmas 1.1/1.2/2.2, capacity, exclusion)\n";
  let table =
    Stats.Table.create ~title:"MC: explicit-state exploration"
      ~columns:
        [
          ("instance", Stats.Table.Left);
          ("sessions", Stats.Table.Right);
          ("crashes", Stats.Table.Right);
          ("fp", Stats.Table.Right);
          ("states", Stats.Table.Right);
          ("transitions", Stats.Table.Right);
          ("complete", Stats.Table.Left);
          ("violation", Stats.Table.Left);
        ]
  in
  let pair = Cgraph.Graph.of_edges ~n:2 [ (0, 1) ] in
  let path3 = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let tri = Cgraph.Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  List.iter
    (fun (label, graph, colors, sessions, crash_budget, fp_budget, max_states) ->
      let r =
        Mcheck.Explore.bfs ~max_states
          { Mcheck.Model.graph; colors; sessions; crash_budget; fp_budget }
      in
      Stats.Table.add_row table
        [
          label;
          Stats.Table.cell_int sessions;
          Stats.Table.cell_int crash_budget;
          Stats.Table.cell_int fp_budget;
          Stats.Table.cell_int r.states;
          Stats.Table.cell_int r.transitions;
          Stats.Table.cell_bool r.complete;
          (match r.violation with None -> "none" | Some (m, _) -> m);
        ])
    [
      ("pair", pair, [| 0; 1 |], 2, 0, 0, 300_000);
      ("pair", pair, [| 0; 1 |], 2, 1, 2, 300_000);
      ("path-3", path3, [| 0; 1; 0 |], 1, 0, 0, 300_000);
      ("path-3", path3, [| 0; 1; 0 |], 1, 1, 1, 300_000);
      ("triangle", tri, [| 0; 1; 2 |], 1, 0, 0, 300_000);
      ("triangle", tri, [| 0; 1; 2 |], 1, 1, 0, 300_000);
    ];
  Stats.Table.print table;
  print_endline
    "note: 'complete = yes' rows exhaust every reachable interleaving; capped rows\n\
     verify the explored prefix. No violation is the expected result on every row.\n";
  (* BFS vs sleep-set DPOR: same states, same verdict, fewer transitions.
     The reduction factor grows with the number of non-adjacent process
     pairs (pair has none: every pair of actions interferes). *)
  let reduction_table =
    Stats.Table.create ~title:"MC: BFS vs DPOR (sleep-set partial-order reduction)"
      ~columns:
        [
          ("instance", Stats.Table.Left);
          ("sessions", Stats.Table.Right);
          ("crashes", Stats.Table.Right);
          ("fp", Stats.Table.Right);
          ("states", Stats.Table.Right);
          ("bfs trans", Stats.Table.Right);
          ("dpor trans", Stats.Table.Right);
          ("reduction", Stats.Table.Right);
          ("bfs s", Stats.Table.Right);
          ("dpor s", Stats.Table.Right);
        ]
  in
  List.iter
    (fun (label, graph, colors, sessions, crash_budget, fp_budget, max_states) ->
      let cfg = { Mcheck.Model.graph; colors; sessions; crash_budget; fp_budget } in
      let timed f =
        let t0 = Sys.time () in
        let r = f () in
        (r, Sys.time () -. t0)
      in
      let b, bfs_t = timed (fun () -> Mcheck.Explore.bfs ~max_states cfg) in
      let d, dpor_t = timed (fun () -> Mcheck.Dpor.explore ~max_states cfg) in
      assert (b.Mcheck.Explore.states = d.Mcheck.Explore.states);
      assert (b.violation = None && d.violation = None);
      Stats.Table.add_row reduction_table
        [
          label;
          Stats.Table.cell_int sessions;
          Stats.Table.cell_int crash_budget;
          Stats.Table.cell_int fp_budget;
          Stats.Table.cell_int b.states;
          Stats.Table.cell_int b.transitions;
          Stats.Table.cell_int d.transitions;
          Printf.sprintf "%.2fx" (float_of_int b.transitions /. float_of_int d.transitions);
          Printf.sprintf "%.2f" bfs_t;
          Printf.sprintf "%.2f" dpor_t;
        ])
    [
      ("pair", pair, [| 0; 1 |], 2, 0, 0, 300_000);
      ("pair", pair, [| 0; 1 |], 2, 1, 2, 300_000);
      ("path-3", path3, [| 0; 1; 0 |], 1, 0, 0, 300_000);
      ("path-3", path3, [| 0; 1; 0 |], 1, 1, 0, 300_000);
      ("triangle", tri, [| 0; 1; 2 |], 1, 0, 0, 300_000);
    ];
  Stats.Table.print reduction_table;
  print_endline
    "note: identical state counts and verdicts are asserted per row; DPOR explores the\n\
     same space through fewer interleavings. Wall-clock is a single measurement.\n";
  (* Liveness in possibility form (Theorem 2): from every reachable state
     in which a process is hungry and live, some continuation eats. *)
  let progress_table =
    Stats.Table.create ~title:"MC: exhaustive progress check (Theorem 2, possibility form)"
      ~columns:
        [
          ("instance", Stats.Table.Left);
          ("pid", Stats.Table.Right);
          ("crashes", Stats.Table.Right);
          ("fp", Stats.Table.Right);
          ("reachable", Stats.Table.Right);
          ("hungry_states", Stats.Table.Right);
          ("stuck", Stats.Table.Right);
        ]
  in
  List.iter
    (fun (label, graph, colors, sessions, crash_budget, fp_budget, pid) ->
      let r =
        Mcheck.Explore.progress ~max_states:300_000 ~pid
          { Mcheck.Model.graph; colors; sessions; crash_budget; fp_budget }
      in
      Stats.Table.add_row progress_table
        [
          label;
          Stats.Table.cell_int pid;
          Stats.Table.cell_int crash_budget;
          Stats.Table.cell_int fp_budget;
          Stats.Table.cell_int r.reachable;
          Stats.Table.cell_int r.hungry_states;
          Stats.Table.cell_int r.stuck_states;
        ])
    [
      ("pair", pair, [| 0; 1 |], 2, 0, 0, 0);
      ("pair", pair, [| 0; 1 |], 1, 1, 2, 0);
      ("path-3", path3, [| 0; 1; 0 |], 1, 0, 0, 1);
      ("triangle", tri, [| 0; 1; 2 |], 1, 0, 0, 0);
      ("triangle", tri, [| 0; 1; 2 |], 1, 0, 0, 2);
    ];
  Stats.Table.print progress_table;
  print_endline
    "note: stuck = 0 on every row means no reachable hungry-live state has lost all\n\
     paths to eating — wait-freedom's possibility form, verified exhaustively.\n"

let run_fuzz () =
  print_endline
    "### FZ — property-based fuzzing campaigns (shared oracles for Theorems 1-3 + Section 7)\n";
  let domains = (Harness.Experiments.default_ctx ()).domains in
  (* Fixed seeds and case counts: the tables are deterministic, like
     every other reproduction artifact. *)
  let sound = Fuzz.Campaign.run ~domains ~profile:Fuzz.Gen.Sound ~seed:11L ~cases:400 () in
  let hostile =
    Fuzz.Campaign.run ~domains ~profile:Fuzz.Gen.Hostile ~seed:11L ~cases:60 ()
  in
  let summary =
    Stats.Table.create ~title:"FZ: campaign summary (seed 11)"
      ~columns:
        [
          ("profile", Stats.Table.Left);
          ("cases", Stats.Table.Right);
          ("failures", Stats.Table.Right);
          ("eats", Stats.Table.Right);
          ("events", Stats.Table.Right);
        ]
  in
  List.iter
    (fun (r : Fuzz.Campaign.report) ->
      Stats.Table.add_row summary
        [
          Fuzz.Gen.profile_name r.profile;
          Stats.Table.cell_int r.cases;
          Stats.Table.cell_int (List.length r.failures);
          Stats.Table.cell_int r.total_eats;
          Stats.Table.cell_int r.total_events;
        ])
    [ sound; hostile ];
  Stats.Table.print summary;
  let coverage =
    Stats.Table.create ~title:"FZ: per-oracle coverage"
      ~columns:
        [
          ("oracle", Stats.Table.Left);
          ("sound checked", Stats.Table.Right);
          ("sound failures", Stats.Table.Right);
          ("hostile checked", Stats.Table.Right);
          ("hostile failures", Stats.Table.Right);
        ]
  in
  let fail_count (r : Fuzz.Campaign.report) name =
    List.length (List.filter (fun (f : Fuzz.Campaign.failure) -> f.property = name) r.failures)
  in
  List.iter
    (fun (p : Fuzz.Property.t) ->
      Stats.Table.add_row coverage
        [
          p.name;
          Stats.Table.cell_int (List.assoc p.name sound.checked);
          Stats.Table.cell_int (fail_count sound p.name);
          Stats.Table.cell_int (List.assoc p.name hostile.checked);
          Stats.Table.cell_int (fail_count hostile p.name);
        ])
    Fuzz.Property.all;
  Stats.Table.print coverage;
  print_endline
    "note: the sound profile stays inside the theorems' hypotheses — 0 failures is the\n\
     expected (and asserted-in-CI) result. The hostile profile adds baseline daemons and\n\
     bad detectors, so its failures are the oracles catching designed violations.\n";
  let shrunk =
    Stats.Table.create ~title:"FZ: delta-debugging effectiveness (hostile failures)"
      ~columns:
        [
          ("case", Stats.Table.Right);
          ("property", Stats.Table.Left);
          ("topology", Stats.Table.Left);
          ("shrunk to", Stats.Table.Left);
          ("horizon", Stats.Table.Right);
          ("shrunk to ", Stats.Table.Right);
          ("steps", Stats.Table.Right);
          ("attempts", Stats.Table.Right);
        ]
  in
  List.iter
    (fun (f : Fuzz.Campaign.failure) ->
      if f.shrink_steps > 0 || f.shrink_attempts > 0 then
        Stats.Table.add_row shrunk
          [
            Stats.Table.cell_int f.case;
            f.property;
            Cgraph.Topology.name f.scenario.topology;
            Cgraph.Topology.name f.shrunk.topology;
            Stats.Table.cell_int f.scenario.horizon;
            Stats.Table.cell_int f.shrunk.horizon;
            Stats.Table.cell_int f.shrink_steps;
            Stats.Table.cell_int f.shrink_attempts;
          ])
    hostile.failures;
  Stats.Table.print shrunk;
  print_endline
    "note: every failing case minimizes to a few processes and a short horizon; each\n\
     reproducer replays to the same verdict from its scenario fields alone.\n"

let usage () =
  prerr_endline
    "usage: main.exe [ID ...] [--domains N] [--seeds N]\n\
     IDs: e1..e12, f1..f6, mc, fuzz, perf (all when omitted).\n\
     --domains caps batch/sweep parallelism (default: recommended domain count;\n\
     output is identical for any value); --seeds sets seeds per batch row.";
  exit 2

let () =
  let default = Harness.Experiments.default_ctx () in
  let rec parse args (ctx : Harness.Experiments.ctx) ids =
    match args with
    | [] -> (ctx, List.rev ids)
    | "--domains" :: v :: rest -> (
        match int_of_string_opt v with
        | Some d when d >= 1 -> parse rest { ctx with domains = d } ids
        | _ -> usage ())
    | "--seeds" :: v :: rest -> (
        match int_of_string_opt v with
        | Some s when s >= 1 -> parse rest { ctx with seeds = s } ids
        | _ -> usage ())
    | ("--domains" | "--seeds" | "--help" | "-h") :: _ -> usage ()
    | id :: rest -> parse rest ctx (id :: ids)
  in
  let ctx, ids = parse (List.tl (Array.to_list Sys.argv)) default [] in
  let wants x = ids = [] || List.mem x ids in
  List.iter
    (fun (e : Harness.Experiments.t) ->
      if wants e.id then Harness.Experiments.run_and_print ~ctx e)
    Harness.Experiments.all;
  if wants "mc" then run_mc ();
  if wants "fuzz" then run_fuzz ();
  if wants "perf" then run_perf ()
