(* Deterministic machine-readable benchmark reports.

   A report is a flat list of (key, value) metrics rendered as a
   one-metric-per-line JSON object, so the committed baseline
   (BENCH_scale.json) diffs line-by-line and the comparison logic needs
   no JSON library. Keys follow a naming convention that doubles as the
   comparison policy:

   - [*_seconds] / [*_per_sec] — wall-clock derived, machine-dependent:
     compared advisorily (a warning above the tolerance, never a
     failure);
   - [live_*] — whole-heap measurements, sensitive to what other domains
     retain: advisory as well;
   - [*_words] — allocation counts from [Gc.allocated_bytes] deltas:
     deterministic for a fixed code path up to a few words of runtime
     jitter (the OCaml 5 runtime occasionally performs a small internal
     allocation inside a measured window), so they must match the
     baseline within a fixed 64-word slack — real hot-path regressions
     are at least one word per event or per process, orders of
     magnitude above the slack (an intended change means regenerating
     the baseline — that is the allocation-regression gate);
   - everything else (event/state/case counts, names) — part of the
     determinism contract: exact match required. *)

type value = Int of int | Float of float | Str of string

type t = { mutable entries : (string * value) list (* reversed *) }

let create () = { entries = [] }

let add t key value =
  if List.mem_assoc key (t.entries) then
    invalid_arg (Printf.sprintf "Report.add: duplicate key %s" key);
  t.entries <- (key, value) :: t.entries

let int t key v = add t key (Int v)
let float t key v = add t key (Float v)
let str t key v = add t key (Str v)

let render_value = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6g" f
  | Str s -> Printf.sprintf "%S" s

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  let entries = List.rev t.entries in
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string buf (Printf.sprintf "  %S: %s" k (render_value v));
      if i < List.length entries - 1 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n')
    entries;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write t path =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

(* ------------------------- parsing ------------------------- *)

(* Parses exactly the format [to_string] emits: one ["key": value] pair
   per line. Unparseable lines (braces) are skipped. *)
let parse_line line =
  let line = String.trim line in
  if String.length line < 2 || line.[0] <> '"' then None
  else
    match String.index_from_opt line 1 '"' with
    | None -> None
    | Some close -> (
        let key = String.sub line 1 (close - 1) in
        match String.index_from_opt line close ':' with
        | None -> None
        | Some colon ->
            let raw = String.sub line (colon + 1) (String.length line - colon - 1) in
            let raw = String.trim raw in
            let raw =
              if String.length raw > 0 && raw.[String.length raw - 1] = ',' then
                String.sub raw 0 (String.length raw - 1)
              else raw
            in
            if String.length raw >= 2 && raw.[0] = '"' then
              Some (key, Str (String.sub raw 1 (String.length raw - 2)))
            else if String.contains raw '.' || String.contains raw 'e' then
              Option.map (fun f -> (key, Float f)) (float_of_string_opt raw)
            else Option.map (fun i -> (key, Int i)) (int_of_string_opt raw))

let parse contents =
  String.split_on_char '\n' contents |> List.filter_map parse_line

let read path =
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  parse contents

(* ------------------------ comparison ----------------------- *)

type verdict = { failures : string list; warnings : string list }

let ends_with ~suffix s =
  let ls = String.length suffix and l = String.length s in
  l >= ls && String.sub s (l - ls) ls = suffix

let starts_with ~prefix s =
  let lp = String.length prefix and l = String.length s in
  l >= lp && String.sub s 0 lp = prefix

let advisory key =
  let metric =
    match String.rindex_opt key '.' with
    | Some i -> String.sub key (i + 1) (String.length key - i - 1)
    | None -> key
  in
  ends_with ~suffix:"_seconds" key
  || ends_with ~suffix:"_per_sec" key
  || starts_with ~prefix:"live_" metric

let as_float = function Int i -> Some (float_of_int i) | Float f -> Some f | Str _ -> None

(* Compare [current] against [baseline]. Advisory keys warn when worse
   by more than [tolerance] (fractional; default 25%); all other keys
   must match exactly. Keys present on one side only are warnings (new
   metrics) or failures (lost metrics). *)
let compare_metrics ?(tolerance = 0.25) ~baseline ~current () =
  let failures = ref [] and warnings = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let warn fmt = Printf.ksprintf (fun m -> warnings := m :: !warnings) fmt in
  List.iter
    (fun (key, base) ->
      match List.assoc_opt key current with
      | None -> fail "%s: present in baseline but missing from current report" key
      | Some cur -> (
          if advisory key then
            match (as_float base, as_float cur) with
            | Some b, Some c when b > 0.0 ->
                (* For throughput (_per_sec) lower is worse; for
                   durations and heap sizes higher is worse. *)
                let worse =
                  if ends_with ~suffix:"_per_sec" key then (b -. c) /. b else (c -. b) /. b
                in
                if worse > tolerance then
                  warn "%s: %s -> %s (%.0f%% worse than baseline; advisory)" key
                    (render_value base) (render_value cur) (100.0 *. worse)
            | _ -> ()
          else
            let words_within_slack =
              ends_with ~suffix:"_words" key
              &&
              match (as_float base, as_float cur) with
              | Some b, Some c -> Float.abs (c -. b) <= 64.0
              | _ -> false
            in
            if base <> cur && not words_within_slack then
              fail
                "%s: %s -> %s (deterministic metric changed; regenerate the baseline if \
                 this is intended)"
                key (render_value base) (render_value cur)))
    baseline;
  List.iter
    (fun (key, _) ->
      if not (List.mem_assoc key baseline) then
        warn "%s: new metric not in baseline (regenerate to start tracking it)" key)
    current;
  { failures = List.rev !failures; warnings = List.rev !warnings }

let compare_files ?tolerance ~baseline ~current () =
  compare_metrics ?tolerance ~baseline:(read baseline) ~current:(read current) ()
